// Command amacbench regenerates the paper's full evaluation: every cell of
// the results table (Figure 1), the Figure 2 lower-bound construction, and
// the per-subroutine lemma measurements, printed as ASCII tables with
// measured-vs-bound ratios and shape verdicts. EXPERIMENTS.md is the
// curated record of one such run.
//
// Usage:
//
//	amacbench [-quick] [-trials N] [-seed S] [-check] [-parallel P]
//	          [-no-arena] [-only id-substring] [-experiments large-n]
//	          [-json BENCH.json] [-server http://host:7437]
//	          [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -experiments enables gated experiment groups (comma-separated). The
// large-n group pushes sweeps to n = 10^5 and takes minutes to hours; it
// never runs by default and its records stay out of the benchdiff gate.
//
// -parallel runs each experiment's (sweep point, trial) simulations on a
// bounded worker pool; tables are byte-identical at any parallelism.
// -no-arena disables cross-trial run-arena and fleet reuse for pinned
// topologies (a debugging escape hatch; output is identical either way).
// -json appends a machine-readable perf record per experiment (wall time,
// simulation events, events/sec, allocations), the repo's perf trajectory;
// cmd/benchdiff compares two such records and gates CI on regressions.
// -cpuprofile and -memprofile write pprof profiles covering the selected
// experiments (see PERFORMANCE.md for the profiling workflow); the memory
// profile is a heap snapshot taken after the last experiment, with
// runtime.MemProfileRate raised so allocation sites are attributed
// accurately.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"amac/internal/harness"
	"amac/internal/jobs"
	"amac/internal/perfrecord"
	"amac/internal/scenario"
)

func main() {
	quick := flag.Bool("quick", false, "use the reduced sweep sizes (as the benchmarks do)")
	trials := flag.Int("trials", 3, "repetitions per data point")
	seed := flag.Int64("seed", 1, "base random seed")
	checkFlag := flag.Bool("check", false, "verify the abstract MAC layer guarantees on every run (slower)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker pool size for sweep points and trials")
	noArena := flag.Bool("no-arena", false, "disable cross-trial run-arena and fleet reuse for pinned topologies (debugging)")
	shards := flag.Int("shards", 0, "worker count for experiments with a component-sharded leg (0 = NumCPU); tables are byte-identical at any value")
	only := flag.String("only", "", "run only experiments whose id contains this substring")
	gates := flag.String("experiments", "", "comma-separated gated experiment groups to enable (e.g. \"large-n\"); gated experiments are skipped by default")
	server := flag.String("server", "", "run experiment sweeps on an amacd daemon at this base URL instead of in-process")
	jsonPath := flag.String("json", "", "write a machine-readable perf record (events/sec, allocs) to this path")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile covering the selected experiments to this path")
	memProfile := flag.String("memprofile", "", "write an allocation profile (heap, alloc_objects/alloc_space) to this path")
	flag.Parse()

	if *memProfile != "" {
		// Sample every allocation so small per-event sites are attributed
		// exactly; set before any experiment allocates.
		runtime.MemProfileRate = 1
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "amacbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "amacbench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	opts := harness.Options{
		Quick:       *quick,
		Trials:      *trials,
		Seed:        *seed,
		Check:       *checkFlag,
		Parallelism: *parallel,
		NoArena:     *noArena,
		Shards:      *shards,
	}
	if *server != "" {
		client := &jobs.Client{Base: *server}
		opts.Sweeper = func(id string, specs []scenario.Spec, _ scenario.SweepOptions) ([]*scenario.Report, error) {
			return client.RunSpecs(id, specs)
		}
	}

	experiments := harness.Experiments()

	fmt.Printf("# amacbench — reproduction of Ghaffari, Kantor, Lynch, Newport (PODC 2014)\n")
	fmt.Printf("# options: quick=%v trials=%d seed=%d check=%v parallel=%d\n\n",
		*quick, *trials, *seed, *checkFlag, *parallel)

	bench := perfrecord.File{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Parallelism: *parallel,
		Quick:       *quick,
		Trials:      *trials,
		Seed:        *seed,
		NoArena:     *noArena,
	}
	enabled := map[string]bool{}
	for _, g := range strings.Split(*gates, ",") {
		if g = strings.TrimSpace(g); g != "" {
			enabled[g] = true
		}
	}
	ran := 0
	for _, e := range experiments {
		if *only != "" && !strings.Contains(e.ID, *only) {
			continue
		}
		if e.Gate != "" && !enabled[e.Gate] {
			continue
		}
		var msBefore runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		harness.ResetSimEvents()
		start := time.Now()
		tab := e.Run(opts)
		wall := time.Since(start)
		events := harness.SimEvents()
		var msAfter runtime.MemStats
		runtime.ReadMemStats(&msAfter)
		tab.Render(os.Stdout)
		fmt.Printf("  (%s in %v, %d sim events, %.0f events/sec)\n\n",
			e.ID, wall.Round(time.Millisecond), events,
			float64(events)/wall.Seconds())
		rec := perfrecord.Record{
			ID:           e.ID,
			WallSeconds:  wall.Seconds(),
			SimEvents:    events,
			EventsPerSec: float64(events) / wall.Seconds(),
			Allocs:       msAfter.Mallocs - msBefore.Mallocs,
			AllocBytes:   msAfter.TotalAlloc - msBefore.TotalAlloc,
		}
		rec.Normalize()
		bench.Experiments = append(bench.Experiments, rec)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "amacbench: no experiment matches -only=%q\n", *only)
		os.Exit(1)
	}
	if *jsonPath != "" {
		if err := bench.WriteFile(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "amacbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("# perf record written to %s\n", *jsonPath)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "amacbench: %v\n", err)
			os.Exit(1)
		}
		runtime.GC() // settle the heap so alloc_* totals are complete
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "amacbench: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("# allocation profile written to %s\n", *memProfile)
	}
}
