// Command amacbench regenerates the paper's full evaluation: every cell of
// the results table (Figure 1), the Figure 2 lower-bound construction, and
// the per-subroutine lemma measurements, printed as ASCII tables with
// measured-vs-bound ratios and shape verdicts. EXPERIMENTS.md is the
// curated record of one such run.
//
// Usage:
//
//	amacbench [-quick] [-trials N] [-seed S] [-check] [-only id-substring]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"amac/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "use the reduced sweep sizes (as the benchmarks do)")
	trials := flag.Int("trials", 3, "repetitions per data point")
	seed := flag.Int64("seed", 1, "base random seed")
	checkFlag := flag.Bool("check", false, "verify the abstract MAC layer guarantees on every run (slower)")
	only := flag.String("only", "", "run only experiments whose id contains this substring")
	flag.Parse()

	opts := harness.Options{
		Quick:  *quick,
		Trials: *trials,
		Seed:   *seed,
		Check:  *checkFlag,
	}

	experiments := []struct {
		id  string
		run func(harness.Options) *harness.Table
	}{
		{"fig1-std-reliable", harness.Fig1StdReliable},
		{"fig1-std-rrestricted", harness.Fig1StdRRestricted},
		{"fig1-std-arbitrary", harness.Fig1StdArbitrary},
		{"fig1-std-greyzone-lb", harness.Fig2LowerBound},
		{"fig1-enh-greyzone", harness.Fig1EnhGreyZone},
		{"ablation-bmmb-vs-fmmb", harness.AblationFackRatio},
		{"mis-subroutine", harness.MISExperiment},
		{"gather-spread-subroutines", harness.SubroutineExperiment},
		{"ablation-message-complexity", harness.MessageComplexity},
	}

	fmt.Printf("# amacbench — reproduction of Ghaffari, Kantor, Lynch, Newport (PODC 2014)\n")
	fmt.Printf("# options: quick=%v trials=%d seed=%d check=%v\n\n", *quick, *trials, *seed, *checkFlag)

	ran := 0
	for _, e := range experiments {
		if *only != "" && !strings.Contains(e.id, *only) {
			continue
		}
		start := time.Now()
		tab := e.run(opts)
		tab.Render(os.Stdout)
		fmt.Printf("  (%s in %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "amacbench: no experiment matches -only=%q\n", *only)
		os.Exit(1)
	}
}
