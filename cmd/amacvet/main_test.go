package main

import (
	"bytes"
	"strings"
	"testing"

	"amac/internal/lint"
)

func TestListNamesEveryAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, errb.String())
	}
	for _, name := range lint.AnalyzerNames() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("run(-run nosuch) = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message: %s", errb.String())
	}
}

// TestTreeIsClean drives the binary's real entry point over the repository:
// the same invocation CI runs must exit 0 with no output.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the full module and its stdlib closure")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-C", "../..", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("amacvet ./... = %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", out.String())
	}
}

func TestJSONOutputIsValidOnCleanRun(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks packages")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "-C", "../..", "./internal/lint/..."}, &out, &errb); code != 0 {
		t.Fatalf("amacvet -json = %d, stderr: %s", code, errb.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("clean -json run = %q, want []", got)
	}
}
