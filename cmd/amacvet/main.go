// Command amacvet is the project's static-analysis gate: a multichecker
// running the internal/lint suite (mapiter, wallclock, hotalloc, payloadbox,
// pooledhandle) over the package patterns given on the command line. It
// exits 0 on a clean tree, 1 when any diagnostic survives suppression, and
// 2 on a load or internal failure — the same contract as go vet, so CI can
// treat it identically.
//
// Usage:
//
//	go tool amacvet [-run name[,name...]] [-json] [-list] [packages]
//
// With no packages, ./... is analyzed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"amac/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("amacvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		only    = fs.String("run", "", "comma-separated analyzer names to run (default: all)")
		asJSON  = fs.Bool("json", false, "emit diagnostics as a JSON array")
		list    = fs.Bool("list", false, "list analyzers and exit")
		workdir = fs.String("C", ".", "directory to resolve package patterns in")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers := lint.Analyzers
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range lint.Analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := byName[strings.TrimSpace(name)]
			if a == nil {
				fmt.Fprintf(stderr, "amacvet: unknown analyzer %q (have %s)\n", name, strings.Join(lint.AnalyzerNames(), ", "))
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	patterns := fs.Args()
	res, err := lint.Load(*workdir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "amacvet: %v\n", err)
		return 2
	}
	diags, err := lint.RunAnalyzers(res.Roots, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "amacvet: %v\n", err)
		return 2
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, len(diags))
		for i, d := range diags {
			out[i] = jsonDiag{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message}
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "amacvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
