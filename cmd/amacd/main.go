// Command amacd is the experiment daemon: a long-running HTTP service that
// executes scenario sweeps as sharded, checkpointed, resumable jobs.
//
// Submit a job (a scenarios/*.json scenario spec, or a job spec with a
// "sweep" grid), poll it, and fetch the merged result:
//
//	amacd -addr :7437 -dir /var/lib/amacd &
//	curl -d @scenarios/quickstart.json localhost:7437/jobs
//	curl localhost:7437/jobs/<id>
//	curl localhost:7437/jobs/<id>/result
//
// Results are byte-identical to a single-machine run of the same specs: a
// sweep's (spec, trial) task space is split into shards keyed by exact
// int64 trial seeds, each shard's trials are deterministic simulations, and
// shard records merge in index order. Completed shards checkpoint to the
// store directory, so a killed daemon restarted over the same -dir resumes
// every unfinished job without rerunning finished shards.
//
// -local runs one job spec file in-process (no server, no checkpoints) and
// prints the canonical result JSON — the reference bytes the service path
// is held to. -exit-after-shards N crashes the process (hard exit, no
// cleanup) after N shard checkpoints — the deterministic kill point the CI
// resume smoke restarts from.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"

	"amac/internal/jobs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "amacd:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("amacd", flag.ContinueOnError)
	addr := fs.String("addr", ":7437", "listen address")
	dir := fs.String("dir", "amacd-data", "checkpoint directory (jobs resume from it on restart)")
	workers := fs.Int("workers", runtime.NumCPU(), "worker pool bound for in-shard trial parallelism")
	local := fs.String("local", "", "run this job spec file in-process and print the result (no server)")
	exitAfter := fs.Int("exit-after-shards", 0, "crash injection for resume testing: exit the process hard after this many shard checkpoints (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	if *local != "" {
		job, err := jobs.Load(*local)
		if err != nil {
			return err
		}
		res, err := jobs.Execute(job, *workers)
		if err != nil {
			return err
		}
		data, err := res.Canonical()
		if err != nil {
			return err
		}
		_, err = out.Write(data)
		return err
	}

	store, err := jobs.Open(*dir, *workers)
	if err != nil {
		return err
	}
	defer store.Close()
	if *exitAfter > 0 {
		// The store runs jobs on one loop goroutine, so a plain counter
		// suffices. os.Exit skips all cleanup on purpose: the smoke test
		// wants a crash between checkpoints, not a graceful shutdown.
		n := 0
		store.SetAfterShard(func(id string, sh jobs.Shard) error {
			if n++; n >= *exitAfter {
				fmt.Fprintf(os.Stderr, "amacd: crash injection: exiting after %d shard checkpoints (job %s, shard %d)\n", n, id, sh.Index)
				os.Exit(3)
			}
			return nil
		})
	}
	fmt.Fprintf(out, "amacd: serving on %s, checkpoints in %s, %d workers\n", *addr, *dir, *workers)
	return http.ListenAndServe(*addr, jobs.NewHandler(store))
}
