// Sensornet: a 6×8 grid sensor deployment in which every sensor on the
// west edge detects an event and must disseminate its reading to the whole
// field (multi-source MMB). Link unreliability is r-restricted: crosstalk
// only reaches nodes within r grid hops, the regime where the paper proves
// flooding stays fast (Theorem 3.2: O(D·Fprog + r·k·Fack)).
//
// The example sweeps r and prints measured completion against the theorem's
// bound — the practical story of the paper: "straightforward flooding
// strategies tend to work well in real networks" as long as unreliable
// links are local.
//
// Run with:
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"

	"amac/internal/core"
	"amac/internal/graph"
	"amac/internal/sched"
	"amac/internal/sim"
	"amac/internal/topology"
)

const (
	rows, cols = 6, 8
	fprog      = sim.Time(10)
	fack       = sim.Time(200)
)

func main() {
	base := topology.Grid(rows, cols)
	n := base.N()

	// Event: every sensor in the west column has one reading to report.
	var origins []graph.NodeID
	for r := 0; r < rows; r++ {
		origins = append(origins, graph.NodeID(r*cols))
	}
	assignment := core.Singleton(n, origins)
	k := assignment.K()
	diameter := base.G.Diameter()

	fmt.Printf("sensor field: %d×%d grid, n=%d, D=%d, k=%d west-edge readings\n\n",
		rows, cols, n, diameter, k)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "r\tunreliable links\tcompletion (ticks)\tThm 3.2 bound\tratio")
	for _, r := range []int{1, 2, 3, 4} {
		rng := rand.New(rand.NewSource(int64(r) * 101))
		// Crosstalk: half of all node pairs within r grid hops.
		dual := topology.RRestricted(base.G, r, 0.5, rng,
			fmt.Sprintf("grid-crosstalk(r=%d)", r))
		res := core.Run(core.RunConfig{
			Dual:             dual,
			Fprog:            fprog,
			Fack:             fack,
			Scheduler:        &sched.Contention{Rel: sched.Bernoulli{P: 0.5}},
			Seed:             int64(r),
			Assignment:       assignment,
			Automata:         core.NewBMMBFleet(n),
			HaltOnCompletion: true,
			Check:            true,
		})
		if !res.Solved {
			fmt.Fprintf(os.Stderr, "sensornet: r=%d run failed (%d/%d)\n",
				r, res.Delivered, res.Required)
			os.Exit(1)
		}
		if !res.Report.OK() {
			fmt.Fprintf(os.Stderr, "sensornet: model violation: %v\n", res.Report.Violations[0])
			os.Exit(1)
		}
		bound := sim.Time(diameter)*fprog + sim.Time(r*k)*fack
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.3f\n",
			r, len(dual.UnreliableEdges()), int64(res.CompletionTime), int64(bound),
			float64(res.CompletionTime)/float64(bound))
	}
	w.Flush()
	fmt.Println("\nflooding stays comfortably inside O(D·Fprog + r·k·Fack) at every r —")
	fmt.Println("locality of unreliability, not its quantity, is what keeps BMMB fast.")
}
