// Sensornet: a 6×8 grid sensor deployment in which every sensor on the
// west edge detects an event and must disseminate its reading to the whole
// field (multi-source MMB). Link unreliability is r-restricted: crosstalk
// only reaches nodes within r grid hops, the regime where the paper proves
// flooding stays fast (Theorem 3.2: O(D·Fprog + r·k·Fack)).
//
// The example sweeps r over a family of declarative scenario specs — only
// the topology's "r" parameter changes per point — and prints measured
// completion against the theorem's bound: the practical story of the paper,
// "straightforward flooding strategies tend to work well in real networks"
// as long as unreliable links are local.
//
// Run with:
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"amac/internal/scenario"
	"amac/internal/topology"
)

const (
	rows, cols = 6, 8
	fprog      = 10
	fack       = 200
)

func main() {
	// Event: every sensor in the west column has one reading to report.
	var origins []int
	for r := 0; r < rows; r++ {
		origins = append(origins, r*cols)
	}
	k := len(origins)

	spec := func(r int) scenario.Spec {
		return scenario.Spec{
			Name: fmt.Sprintf("sensornet-r%d", r),
			Topology: scenario.TopologySpec{
				Name: "grid-crosstalk",
				// Crosstalk: half of all node pairs within r grid hops.
				Params: topology.Params{"rows": rows, "cols": cols, "r": float64(r), "p": 0.5},
				Seed:   int64(r) * 101,
			},
			Workload:  scenario.WorkloadSpec{Kind: scenario.WorkloadSingleton, Origins: origins},
			Algorithm: scenario.AlgorithmSpec{Name: "bmmb"},
			Scheduler: scenario.SchedulerSpec{Name: "contention", Params: topology.Params{"rel": 0.5}},
			Model:     scenario.ModelSpec{Fprog: fprog, Fack: fack},
			Run:       scenario.RunSpec{Seed: int64(r), Check: true},
		}
	}

	var specs []scenario.Spec
	for _, r := range []int{1, 2, 3, 4} {
		specs = append(specs, spec(r))
	}
	reports, err := scenario.Sweep(specs, 1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sensornet: %v\n", err)
		os.Exit(1)
	}

	diameter := reports[0].Trials[0].Built.Dual.G.Diameter()
	n := reports[0].Trials[0].Built.Dual.N()
	fmt.Printf("sensor field: %d×%d grid, n=%d, D=%d, k=%d west-edge readings\n\n",
		rows, cols, n, diameter, k)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "r\tunreliable links\tcompletion (ticks)\tThm 3.2 bound\tratio")
	for i, rep := range reports {
		r := i + 1
		trial := rep.Trials[0]
		res := trial.Result
		if !res.Solved {
			fmt.Fprintf(os.Stderr, "sensornet: r=%d run failed (%d/%d)\n",
				r, res.Delivered, res.Required)
			os.Exit(1)
		}
		if !res.Report.OK() {
			fmt.Fprintf(os.Stderr, "sensornet: model violation: %v\n", res.Report.Violations[0])
			os.Exit(1)
		}
		bound := diameter*fprog + r*k*fack
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.3f\n",
			r, len(trial.Built.Dual.UnreliableEdges()), int64(res.CompletionTime), bound,
			float64(res.CompletionTime)/float64(bound))
	}
	w.Flush()
	fmt.Println("\nflooding stays comfortably inside O(D·Fprog + r·k·Fack) at every r —")
	fmt.Println("locality of unreliability, not its quantity, is what keeps BMMB fast.")
}
