// Quickstart: build a small grey-zone radio network, run the BMMB flooding
// protocol from Ghaffari, Kantor, Lynch & Newport (PODC 2014) on the
// standard abstract MAC layer, and verify both the problem solution and the
// model guarantees.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"os"

	"amac/internal/core"
	"amac/internal/graph"
	"amac/internal/sched"
	"amac/internal/topology"
)

func main() {
	// A radio network: 30 devices dropped uniformly in a 4×4 square.
	// Devices within distance 1 share a reliable link (G); pairs within
	// the grey zone (1, 1.6] may or may not hear each other (G′).
	rng := rand.New(rand.NewSource(7))
	dual := topology.ConnectedRandomGeometric(30, 4, 1.6, 0.5, rng, 200)
	if dual == nil {
		fmt.Fprintln(os.Stderr, "quickstart: could not build a connected network")
		os.Exit(1)
	}
	fmt.Printf("network: %s\n", dual.Name)
	fmt.Printf("  nodes=%d  diameter=%d  reliable-links=%d  unreliable-links=%d\n",
		dual.N(), dual.G.Diameter(), dual.G.M(), len(dual.UnreliableEdges()))

	// Three messages start at three different devices (the MMB problem).
	assignment := core.Singleton(dual.N(), []graph.NodeID{0, 10, 20})

	// Run BMMB — plain flooding with a FIFO queue and a duplicate filter —
	// against a contention-based scheduler in which a receiver absorbs at
	// most one message per Fprog window and unreliable links fire with
	// probability 1/2.
	result := core.Run(core.RunConfig{
		Dual:             dual,
		Fprog:            10,  // progress bound: some message every 10 ticks
		Fack:             200, // acknowledgment bound: specific message within 200
		Scheduler:        &sched.Contention{Rel: sched.Bernoulli{P: 0.5}},
		Seed:             1,
		Assignment:       assignment,
		Automata:         core.NewBMMBFleet(dual.N()),
		HaltOnCompletion: true,
		Check:            true,
	})

	if !result.Solved {
		fmt.Fprintf(os.Stderr, "quickstart: MMB not solved (%d/%d deliveries)\n",
			result.Delivered, result.Required)
		os.Exit(1)
	}
	fmt.Printf("solved: all %d messages reached all %d nodes\n", assignment.K(), dual.N())
	fmt.Printf("  completion time : %d ticks\n", int64(result.CompletionTime))
	fmt.Printf("  broadcasts used : %d\n", result.Broadcasts)
	fmt.Printf("  theoretical cap : O((D+k)·Fack) = %d ticks (Theorem 3.1)\n",
		(dual.G.Diameter()+assignment.K())*200)
	if result.Report.OK() {
		fmt.Println("  model check     : receive/ack correctness, termination, Fack and Fprog bounds all hold")
	} else {
		fmt.Printf("  model check     : VIOLATIONS %v\n", result.Report.Violations)
		os.Exit(1)
	}
}
