// Quickstart: declare a small grey-zone radio scenario, run the BMMB
// flooding protocol from Ghaffari, Kantor, Lynch & Newport (PODC 2014) on
// the standard abstract MAC layer, and verify both the problem solution and
// the model guarantees.
//
// The whole experiment is one scenario.Spec — the same declarative object
// amacsim loads from JSON files (see scenarios/quickstart.json for this
// exact scenario as data).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"amac/internal/scenario"
	"amac/internal/topology"
)

func main() {
	// A radio network: 30 devices dropped uniformly in a 4×4 square.
	// Devices within distance 1 share a reliable link (G); pairs within
	// the grey zone (1, 1.6] may or may not hear each other (G′). Three
	// messages start at three different devices (the MMB problem), and the
	// contention scheduler lets each receiver absorb at most one message
	// per Fprog window, with unreliable links firing with probability 1/2.
	spec := scenario.Spec{
		Name: "quickstart",
		Topology: scenario.TopologySpec{
			Name:   "rgg",
			Params: topology.Params{"n": 30, "side": 4, "c": 1.6, "p": 0.5},
			Seed:   7,
		},
		Workload:  scenario.WorkloadSpec{Kind: scenario.WorkloadSingleton, Origins: []int{0, 10, 20}},
		Algorithm: scenario.AlgorithmSpec{Name: "bmmb"},
		Scheduler: scenario.SchedulerSpec{Name: "contention", Params: topology.Params{"rel": 0.5}},
		Model:     scenario.ModelSpec{Fprog: 10, Fack: 200}, // progress every 10 ticks, specific message within 200
		Run:       scenario.RunSpec{Seed: 1, Check: true},
	}

	report, err := scenario.Run(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
	trial := report.Trials[0]
	dual, result := trial.Built.Dual, trial.Result

	fmt.Printf("network: %s\n", dual.Name)
	fmt.Printf("  nodes=%d  diameter=%d  reliable-links=%d  unreliable-links=%d\n",
		dual.N(), dual.G.Diameter(), dual.G.M(), len(dual.UnreliableEdges()))

	if !result.Solved {
		fmt.Fprintf(os.Stderr, "quickstart: MMB not solved (%d/%d deliveries)\n",
			result.Delivered, result.Required)
		os.Exit(1)
	}
	k := trial.Workload.K()
	fmt.Printf("solved: all %d messages reached all %d nodes\n", k, dual.N())
	fmt.Printf("  completion time : %d ticks\n", int64(result.CompletionTime))
	fmt.Printf("  broadcasts used : %d\n", result.Broadcasts)
	fmt.Printf("  theoretical cap : O((D+k)·Fack) = %d ticks (Theorem 3.1)\n",
		(dual.G.Diameter()+k)*int(spec.Model.Fack))
	if result.Report.OK() {
		fmt.Println("  model check     : receive/ack correctness, termination, Fack and Fprog bounds all hold")
	} else {
		fmt.Printf("  model check     : VIOLATIONS %v\n", result.Report.Violations)
		os.Exit(1)
	}
}
