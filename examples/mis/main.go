// MIS: the paper's maximal-independent-set subroutine (Section 4.2) run
// standalone — the authors note it is of independent interest, being the
// first sub-linear MIS construction for an abstract MAC layer model. The
// example builds a grey-zone geometric network, runs the randomized
// election/announcement protocol, prints an ASCII map of the result, and
// verifies maximal independence.
//
// This example drives the MAC engine directly rather than through the
// scenario API: it runs the MIS stage standalone, which is not an MMB
// scenario (no messages to broadcast — the deliverable is the set itself).
//
// Run with:
//
//	go run ./examples/mis
package main

import (
	"fmt"
	"math/rand"
	"os"

	"amac/internal/check"
	"amac/internal/core"
	"amac/internal/graph"
	"amac/internal/mac"
	"amac/internal/sched"
	"amac/internal/sim"
	"amac/internal/topology"
)

func main() {
	const (
		n     = 60
		side  = 6.0
		grey  = 1.6
		fprog = sim.Time(10)
		fack  = sim.Time(200)
	)
	rng := rand.New(rand.NewSource(2024))
	dual := topology.ConnectedRandomGeometric(n, side, grey, 0.5, rng, 300)
	if dual == nil {
		fmt.Fprintln(os.Stderr, "mis: no connected instance")
		os.Exit(1)
	}

	cfg := core.MISConfig{N: dual.N(), C: grey}
	autos := core.NewMISFleet(dual.N(), cfg)
	eng := mac.NewEngine(mac.Config{
		Dual:      dual,
		Fprog:     fprog,
		Fack:      fack,
		Scheduler: &sched.Slot{},
		Mode:      mac.Enhanced,
		Seed:      5,
	}, autos)

	var lastDecision sim.Time
	joins := 0
	eng.Watch(func(ev sim.TraceEvent) {
		switch ev.Kind {
		case "mis-join":
			joins++
			lastDecision = ev.At
			fmt.Printf("  t=%6d  node %2d joins the MIS (phase %v)\n", int64(ev.At), ev.Node, ev.Value())
		case "mis-covered":
			lastDecision = ev.At
		}
	})
	eng.Start()
	eng.Sim().SetHorizon(sim.Time(cfg.Rounds()+2) * fprog)
	fmt.Printf("running the MIS subroutine on %s (schedule: %d rounds)…\n", dual.Name, cfg.Rounds())
	eng.Run()

	var set []graph.NodeID
	for i, a := range autos {
		if a.(*core.MISNode).InMIS() {
			set = append(set, graph.NodeID(i))
		}
	}
	fmt.Printf("\nresult: |MIS| = %d, all decisions settled by round %d of %d\n",
		len(set), int64(lastDecision/fprog), cfg.Rounds())

	// ASCII map: 24×12 character canvas of the embedding.
	const w, h = 48, 16
	canvas := make([][]byte, h)
	for y := range canvas {
		canvas[y] = make([]byte, w)
		for x := range canvas[y] {
			canvas[y][x] = '.'
		}
	}
	inMIS := map[graph.NodeID]bool{}
	for _, v := range set {
		inMIS[v] = true
	}
	for i, p := range dual.Embed {
		x := int(p.X / side * (w - 1))
		y := int(p.Y / side * (h - 1))
		if inMIS[graph.NodeID(i)] {
			canvas[y][x] = '#'
		} else if canvas[y][x] == '.' {
			canvas[y][x] = 'o'
		}
	}
	fmt.Println("\nfield map (# = MIS member, o = covered node):")
	for _, row := range canvas {
		fmt.Printf("  %s\n", row)
	}

	if !dual.G.IsMaximalIndependent(set) {
		fmt.Fprintln(os.Stderr, "mis: result is NOT a maximal independent set")
		os.Exit(1)
	}
	if !dual.Embed.IsPacked(set, 1.0) {
		fmt.Fprintln(os.Stderr, "mis: members closer than the unit disk — impossible for a valid MIS")
		os.Exit(1)
	}
	rep := check.All(dual, eng.Instances(), check.Params{Fack: fack, Fprog: fprog, End: eng.Sim().Now()})
	if !rep.OK() {
		fmt.Fprintf(os.Stderr, "mis: model violation: %v\n", rep.Violations[0])
		os.Exit(1)
	}
	fmt.Println("\nverified: maximal independence, unit-disk packing, and all MAC layer guarantees.")
}
