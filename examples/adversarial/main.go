// Adversarial: a live run of the paper's lower-bound construction (Figure 2
// and Lemmas 3.19/3.20). Two reliable lines A and B carry messages m0 and
// m1; grey-zone cross links let the adversarial message scheduler keep each
// line's frontier busy with the *other* line's message, so the useful
// message advances only one hop per Fack — every MMB algorithm is forced to
// Ω((D+k)·Fack) under the grey zone constraint (Theorem 3.17).
//
// The whole construction is one declarative spec: the "parallel-lines"
// topology exposes its artifact, the "construction" workload places m0/m1
// on the line heads, and the "adversary" scheduler wires itself to both
// (scenarios/adversarial-lower-bound.json is the same scenario as data).
// The example narrates the frontier progress from the recorded trace, then
// verifies the execution still satisfies every abstract MAC layer guarantee
// (the adversary plays strictly by the rules).
//
// Run with:
//
//	go run ./examples/adversarial
package main

import (
	"fmt"
	"os"

	"amac/internal/core"
	"amac/internal/scenario"
	"amac/internal/topology"
)

func main() {
	const D = 10
	const fprog, fack = 10, 200

	base := scenario.Spec{
		Name:      "adversarial-lower-bound",
		Topology:  scenario.TopologySpec{Name: "parallel-lines", Params: topology.Params{"d": D}},
		Workload:  scenario.WorkloadSpec{Kind: scenario.WorkloadConstruction},
		Algorithm: scenario.AlgorithmSpec{Name: "bmmb"},
		Scheduler: scenario.SchedulerSpec{Name: "adversary"},
		Model:     scenario.ModelSpec{Fprog: fprog, Fack: fack},
		Run:       scenario.RunSpec{Seed: 1, Check: true},
	}
	report, err := scenario.Run(base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adversarial: %v\n", err)
		os.Exit(1)
	}
	trial := report.Trials[0]
	net := trial.Built.Artifact.(*topology.ParallelLinesC)
	res := trial.Result

	fmt.Printf("network C (Figure 2): two %d-node lines, %d reliable + %d unreliable edges\n",
		D, net.G.M(), len(net.UnreliableEdges()))
	fmt.Printf("grey zone constant realized by the embedding: c = %.2f\n\n", net.GreyZoneConstant())

	// Narrate m0's march down line A from the recorded trace.
	m0 := core.Msg{ID: 0, Origin: net.A(1)}
	fmt.Println("m0's frontier progress down line A (one hop per Fack — the adversary's work):")
	for _, ev := range res.Trace.Filter(core.DeliverKind) {
		if ev.Value().(core.Msg) != m0 {
			continue
		}
		node := ev.Node
		if node < D { // line A node
			fmt.Printf("  t=%5d  a%-2d delivers m0   (%.2f Fack)\n",
				int64(ev.At), node+1, float64(ev.At)/float64(fack))
		}
	}

	if !res.Solved {
		fmt.Fprintf(os.Stderr, "adversarial: run did not complete (%d/%d)\n",
			res.Delivered, res.Required)
		os.Exit(1)
	}
	lower := int64(D-1) * fack
	fmt.Printf("\ncompletion: %d ticks; lower-bound formula (D−1)·Fack = %d ticks\n",
		int64(res.CompletionTime), lower)
	if int64(res.CompletionTime) < lower {
		fmt.Fprintln(os.Stderr, "adversarial: execution beat the lower bound — construction broken")
		os.Exit(1)
	}
	if !res.Report.OK() {
		fmt.Fprintf(os.Stderr, "adversarial: the adversary cheated: %v\n", res.Report.Violations[0])
		os.Exit(1)
	}
	fmt.Println("the adversary stayed within all five model guarantees while forcing Ω(D·Fack).")
	fmt.Println("compare: the same network under a benign scheduler —")

	// The identical scenario with only the scheduler entry swapped: acks at
	// Fprog instead of the adversarial stretch.
	benign := base
	benign.Name = "parallel-lines-benign"
	benign.Scheduler = scenario.SchedulerSpec{Name: "sync",
		Params: topology.Params{"ack-delay": fprog, "rel": 0.5}}
	benign.Run.Check = false
	benignReport, err := scenario.Run(benign)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adversarial: benign comparison: %v\n", err)
		os.Exit(1)
	}
	benignRes := benignReport.Trials[0].Result
	fmt.Printf("  benign completion: %d ticks (%.1f× faster than the adversarial schedule)\n",
		int64(benignRes.CompletionTime),
		float64(res.CompletionTime)/float64(benignRes.CompletionTime))
}
