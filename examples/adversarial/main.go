// Adversarial: a live run of the paper's lower-bound construction (Figure 2
// and Lemmas 3.19/3.20). Two reliable lines A and B carry messages m0 and
// m1; grey-zone cross links let the adversarial message scheduler keep each
// line's frontier busy with the *other* line's message, so the useful
// message advances only one hop per Fack — every MMB algorithm is forced to
// Ω((D+k)·Fack) under the grey zone constraint (Theorem 3.17).
//
// The example narrates the frontier progress so you can watch the schedule
// do its work, then verifies the execution still satisfies every abstract
// MAC layer guarantee (the adversary plays strictly by the rules).
//
// Run with:
//
//	go run ./examples/adversarial
package main

import (
	"fmt"
	"os"

	"amac/internal/core"
	"amac/internal/sched"
	"amac/internal/sim"
	"amac/internal/topology"
)

func main() {
	const D = 10
	const fprog, fack = sim.Time(10), sim.Time(200)

	net := topology.NewParallelLinesC(D)
	fmt.Printf("network C (Figure 2): two %d-node lines, %d reliable + %d unreliable edges\n",
		D, net.G.M(), len(net.UnreliableEdges()))
	fmt.Printf("grey zone constant realized by the embedding: c = %.2f\n\n", net.GreyZoneConstant())

	m0 := core.Msg{ID: 0, Origin: net.A(1)}
	m1 := core.Msg{ID: 1, Origin: net.B(1)}
	assignment := make(core.Assignment, net.N())
	assignment[net.A(1)] = []core.Msg{m0}
	assignment[net.B(1)] = []core.Msg{m1}

	adversary := &sched.ParallelLines{
		Net:  net,
		IsM0: func(p any) bool { return p == m0 },
		IsM1: func(p any) bool { return p == m1 },
	}

	res := core.Run(core.RunConfig{
		Dual:             net.Dual,
		Fprog:            fprog,
		Fack:             fack,
		Scheduler:        adversary,
		Seed:             1,
		Assignment:       assignment,
		Automata:         core.NewBMMBFleet(net.N()),
		HaltOnCompletion: true,
		Check:            true,
	})

	// Narrate m0's march down line A from the recorded trace.
	fmt.Println("m0's frontier progress down line A (one hop per Fack — the adversary's work):")
	for _, ev := range res.Engine.Trace().Filter(core.DeliverKind) {
		if ev.Arg.(core.Msg) != m0 {
			continue
		}
		node := ev.Node
		if node < D { // line A node
			fmt.Printf("  t=%5d  a%-2d delivers m0   (%.2f Fack)\n",
				int64(ev.At), node+1, float64(ev.At)/float64(fack))
		}
	}

	if !res.Solved {
		fmt.Fprintf(os.Stderr, "adversarial: run did not complete (%d/%d)\n",
			res.Delivered, res.Required)
		os.Exit(1)
	}
	lower := sim.Time(D-1) * fack
	fmt.Printf("\ncompletion: %d ticks; lower-bound formula (D−1)·Fack = %d ticks\n",
		int64(res.CompletionTime), int64(lower))
	if res.CompletionTime < lower {
		fmt.Fprintln(os.Stderr, "adversarial: execution beat the lower bound — construction broken")
		os.Exit(1)
	}
	if !res.Report.OK() {
		fmt.Fprintf(os.Stderr, "adversarial: the adversary cheated: %v\n", res.Report.Violations[0])
		os.Exit(1)
	}
	fmt.Println("the adversary stayed within all five model guarantees while forcing Ω(D·Fack).")
	fmt.Println("compare: the same network under a benign scheduler —")

	benign := core.Run(core.RunConfig{
		Dual:             topology.NewParallelLinesC(D).Dual,
		Fprog:            fprog,
		Fack:             fack,
		Scheduler:        &sched.Sync{AckDelay: fprog, Rel: sched.Bernoulli{P: 0.5}},
		Seed:             1,
		Assignment:       assignment,
		Automata:         core.NewBMMBFleet(net.N()),
		HaltOnCompletion: true,
	})
	fmt.Printf("  benign completion: %d ticks (%.1f× faster than the adversarial schedule)\n",
		int64(benign.CompletionTime),
		float64(res.CompletionTime)/float64(benign.CompletionTime))
}
