// Realtime: the same BMMB automata that run on the deterministic simulator
// run here unchanged as one goroutine per node over wall-clock time — the
// deployment story behind the abstract MAC layer approach: an algorithm
// written against the model keeps its proven properties over any conforming
// MAC. The recorded execution is checked against the model guarantees with
// the very same checker used for simulated runs.
//
// This example sits beside the scenario API rather than on it: scenario
// specs execute on the deterministic simulator, while rt trades that
// determinism for real goroutines and wall-clock timers.
//
// Run with:
//
//	go run ./examples/realtime
package main

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"amac/internal/check"
	"amac/internal/core"
	"amac/internal/graph"
	"amac/internal/mac"
	"amac/internal/metrics"
	"amac/internal/rt"
	"amac/internal/sim"
	"amac/internal/topology"
)

func main() {
	rng := rand.New(rand.NewSource(17))
	dual := topology.ConnectedRandomGeometric(20, 3.2, 1.6, 0.5, rng, 200)
	if dual == nil {
		fmt.Fprintln(os.Stderr, "realtime: no connected instance")
		os.Exit(1)
	}
	cfg := rt.Config{
		Dual:      dual,
		Fprog:     80 * time.Millisecond,
		Fack:      800 * time.Millisecond,
		RecvDelay: 10 * time.Millisecond,
		AckDelay:  60 * time.Millisecond,
		GreyP:     0.5,
		Seed:      1,
	}
	fmt.Printf("network: %s (D=%d) — one goroutine per node, wall-clock MAC\n",
		dual.Name, dual.G.Diameter())
	fmt.Printf("declared bounds: Fprog=%v Fack=%v (actual delays %v / %v)\n\n",
		cfg.Fprog, cfg.Fack, cfg.RecvDelay, cfg.AckDelay)

	eng := rt.New(cfg, core.NewBMMBFleet(dual.N()))

	assignment := core.Singleton(dual.N(), []graph.NodeID{0, 10})
	required := assignment.K() * dual.N()
	var mu sync.Mutex
	seen := map[[2]int]bool{}
	done := make(chan struct{})
	eng.Watch(func(node mac.NodeID, kind string, arg any) {
		if kind != core.DeliverKind {
			return
		}
		m := arg.(core.Msg)
		mu.Lock()
		defer mu.Unlock()
		key := [2]int{int(node), m.ID}
		if !seen[key] {
			seen[key] = true
			if len(seen) == required {
				close(done)
			}
		}
	})

	start := time.Now()
	eng.Start()
	for v, msgs := range assignment {
		for _, m := range msgs {
			eng.Arrive(mac.NodeID(v), m.Payload())
		}
	}
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		eng.Stop()
		fmt.Fprintln(os.Stderr, "realtime: timed out")
		os.Exit(1)
	}
	completion := time.Since(start)

	// Let trailing re-broadcasts drain, then stop and audit.
	for {
		if _, settled := eng.Quiescent(); settled {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	eng.Stop()

	fmt.Printf("all %d messages delivered to all %d nodes in %v of wall-clock time\n",
		assignment.K(), dual.N(), completion.Round(time.Millisecond))

	insts := eng.Instances()
	rep := check.All(dual, insts, check.Params{
		Fack:  sim.Time(cfg.Fack),
		Fprog: sim.Time(cfg.Fprog),
		End:   eng.Elapsed(),
	})
	if rep.OK() {
		fmt.Println("model audit: the real execution satisfies every abstract MAC layer guarantee")
	} else {
		fmt.Printf("model audit: VIOLATION %v\n", rep.Violations[0])
		os.Exit(1)
	}
	var tr sim.Trace
	m := metrics.Collect(dual, insts, &tr)
	fmt.Printf("\n%s", m.String())
}
