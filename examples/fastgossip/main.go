// Fastgossip: BMMB on the standard abstract MAC layer versus FMMB on the
// enhanced layer, on the same grey-zone network, as the Fack/Fprog gap
// widens. BMMB pays k·Fack for queueing behind acknowledgments; FMMB never
// waits for an ack (it aborts at every Fprog round boundary), so its
// completion time is exactly flat in Fack — the paper's argument that MAC
// layers should expose an abort interface (Section 5).
//
// Run with:
//
//	go run ./examples/fastgossip
package main

import (
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"

	"amac/internal/core"
	"amac/internal/graph"
	"amac/internal/mac"
	"amac/internal/sched"
	"amac/internal/sim"
	"amac/internal/topology"
)

func main() {
	const (
		n     = 30
		k     = 6
		fprog = sim.Time(10)
		grey  = 1.6
	)
	rng := rand.New(rand.NewSource(99))
	dual := topology.ConnectedRandomGeometric(n, 3.8, grey, 0.5, rng, 300)
	if dual == nil {
		fmt.Fprintln(os.Stderr, "fastgossip: no connected instance")
		os.Exit(1)
	}
	origins := make([]graph.NodeID, k)
	for i := range origins {
		origins[i] = graph.NodeID(i * dual.N() / k)
	}
	assignment := core.Singleton(dual.N(), origins)

	fmt.Printf("network: %s (D=%d), k=%d messages, Fprog=%d ticks\n\n",
		dual.Name, dual.G.Diameter(), k, fprog)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Fack/Fprog\tBMMB (standard layer)\tFMMB (enhanced layer)")
	var bmmbFirst, bmmbLast float64
	var fmmbFirst, fmmbLast float64
	ratios := []int{2, 8, 32, 128, 512}
	for i, ratio := range ratios {
		fack := fprog * sim.Time(ratio)
		bm := core.Run(core.RunConfig{
			Dual:             dual,
			Fprog:            fprog,
			Fack:             fack,
			Scheduler:        &sched.Sync{Rel: sched.Bernoulli{P: 0.5}},
			Seed:             int64(ratio),
			Assignment:       assignment,
			Automata:         core.NewBMMBFleet(dual.N()),
			HaltOnCompletion: true,
		})
		cfg := core.FMMBConfig{N: dual.N(), K: k, D: dual.G.Diameter(), C: grey}
		fm := core.Run(core.RunConfig{
			Dual:             dual,
			Fprog:            fprog,
			Fack:             fack,
			Scheduler:        &sched.Slot{},
			Mode:             mac.Enhanced,
			Seed:             int64(ratio),
			Assignment:       assignment,
			Automata:         core.NewFMMBFleet(dual.N(), cfg),
			Horizon:          sim.Time(cfg.Rounds()+2) * fprog,
			StepLimit:        1 << 62,
			HaltOnCompletion: true,
		})
		if !bm.Solved || !fm.Solved {
			fmt.Fprintln(os.Stderr, "fastgossip: a run failed")
			os.Exit(1)
		}
		fmt.Fprintf(w, "%d\t%d ticks\t%d ticks\n",
			ratio, int64(bm.CompletionTime), int64(fm.CompletionTime))
		if i == 0 {
			bmmbFirst, fmmbFirst = float64(bm.CompletionTime), float64(fm.CompletionTime)
		}
		bmmbLast, fmmbLast = float64(bm.CompletionTime), float64(fm.CompletionTime)
	}
	w.Flush()

	fmt.Printf("\nacross the sweep BMMB grew %.0f×, FMMB grew %.2f×.\n",
		bmmbLast/bmmbFirst, fmmbLast/fmmbFirst)
	if fmmbLast < bmmbLast {
		fmt.Println("at the widest gap FMMB wins outright — no Fack term (Theorem 4.1).")
	} else {
		fmt.Println("FMMB's polylog constants still dominate at this network size, but its")
		fmt.Println("completion is flat in Fack while BMMB's keeps growing: extend the sweep")
		fmt.Println("and the crossover is inevitable (Theorem 4.1 has no Fack term).")
	}
}
