// Fastgossip: BMMB on the standard abstract MAC layer versus FMMB on the
// enhanced layer, on the same grey-zone network, as the Fack/Fprog gap
// widens. BMMB pays k·Fack for queueing behind acknowledgments; FMMB never
// waits for an ack (it aborts at every Fprog round boundary), so its
// completion time is exactly flat in Fack — the paper's argument that MAC
// layers should expose an abort interface (Section 5).
//
// Each sweep point is a pair of declarative scenario specs differing only
// in the algorithm name and the Fack constant; the topology is pinned by
// its seed so every run sees the same network.
//
// Run with:
//
//	go run ./examples/fastgossip
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"amac/internal/scenario"
	"amac/internal/topology"
)

func main() {
	const (
		n     = 30
		k     = 6
		fprog = 10
		grey  = 1.6
	)
	topo := scenario.TopologySpec{
		Name:   "rgg",
		Params: topology.Params{"n": n, "side": 3.8, "c": grey, "p": 0.5, "max-tries": 300},
		Seed:   99,
	}
	workload := scenario.WorkloadSpec{Kind: scenario.WorkloadSingleton, K: k}

	ratios := []int{2, 8, 32, 128, 512}
	var specs []scenario.Spec
	for _, ratio := range ratios {
		model := scenario.ModelSpec{Fprog: fprog, Fack: fprog * int64(ratio)}
		run := scenario.RunSpec{Seed: int64(ratio)}
		specs = append(specs,
			scenario.Spec{
				Name: fmt.Sprintf("fastgossip-bmmb-%dx", ratio),
				Topology: topo, Workload: workload,
				Algorithm: scenario.AlgorithmSpec{Name: "bmmb"},
				Scheduler: scenario.SchedulerSpec{Name: "sync", Params: topology.Params{"rel": 0.5}},
				Model:     model, Run: run,
			},
			scenario.Spec{
				Name: fmt.Sprintf("fastgossip-fmmb-%dx", ratio),
				Topology: topo, Workload: workload,
				Algorithm: scenario.AlgorithmSpec{Name: "fmmb", Params: topology.Params{"c": grey}},
				Model:     model, Run: run,
			})
	}

	reports, err := scenario.Sweep(specs, 2)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fastgossip: %v\n", err)
		os.Exit(1)
	}

	dual := reports[0].Trials[0].Built.Dual
	fmt.Printf("network: %s (D=%d), k=%d messages, Fprog=%d ticks\n\n",
		dual.Name, dual.G.Diameter(), k, fprog)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Fack/Fprog\tBMMB (standard layer)\tFMMB (enhanced layer)")
	var bmmbFirst, bmmbLast float64
	var fmmbFirst, fmmbLast float64
	for i, ratio := range ratios {
		bm := reports[2*i].Trials[0].Result
		fm := reports[2*i+1].Trials[0].Result
		if !bm.Solved || !fm.Solved {
			fmt.Fprintln(os.Stderr, "fastgossip: a run failed")
			os.Exit(1)
		}
		fmt.Fprintf(w, "%d\t%d ticks\t%d ticks\n",
			ratio, int64(bm.CompletionTime), int64(fm.CompletionTime))
		if i == 0 {
			bmmbFirst, fmmbFirst = float64(bm.CompletionTime), float64(fm.CompletionTime)
		}
		bmmbLast, fmmbLast = float64(bm.CompletionTime), float64(fm.CompletionTime)
	}
	w.Flush()

	fmt.Printf("\nacross the sweep BMMB grew %.0f×, FMMB grew %.2f×.\n",
		bmmbLast/bmmbFirst, fmmbLast/fmmbFirst)
	if fmmbLast < bmmbLast {
		fmt.Println("at the widest gap FMMB wins outright — no Fack term (Theorem 4.1).")
	} else {
		fmt.Println("FMMB's polylog constants still dominate at this network size, but its")
		fmt.Println("completion is flat in Fack while BMMB's keeps growing: extend the sweep")
		fmt.Println("and the crossover is inevitable (Theorem 4.1 has no Fack term).")
	}
}
